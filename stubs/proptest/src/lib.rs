//! Offline vendored shim for the subset of `proptest` this workspace uses:
//! the `proptest!` macro with `in`-bound arguments, range and `any::<T>()`
//! strategies, tuple composition, `prop::collection::vec`, `prop_map`,
//! and the `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Unlike upstream there is no shrinking and no persisted failure corpus:
//! cases are generated from a deterministic per-test seed (fn name hash ×
//! case index, overridable via `PROPTEST_SEED`), so failures reproduce
//! exactly on rerun. A failing case panics with the case number and seed.

use std::ops::{Range, RangeInclusive};

/// Deterministic case RNG (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one named test case.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0x5EED_0FC1_A550_0001);
        for b in test_name.bytes() {
            seed = seed.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
        }
        TestRng {
            state: seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Number of cases to run per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases per property (default 64).
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// A generator of values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Scalars usable as range-strategy endpoints. The `Strategy` impls for
/// `Range<T>`/`RangeInclusive<T>` are blanket over this trait so type
/// inference unifies unsuffixed literals with the surrounding context.
pub trait RangeEndpoint: Sized + Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_endpoint(lo: Self, hi: Self, inclusive: bool, rng: &mut TestRng) -> Self;
}

macro_rules! endpoint_int {
    ($($t:ty),*) => {$(
        impl RangeEndpoint for $t {
            fn sample_endpoint(lo: Self, hi: Self, inclusive: bool, rng: &mut TestRng) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "empty range strategy");
                // Full-domain inclusive u64/i64 ranges exceed u64: draw raw.
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
endpoint_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! endpoint_float {
    ($($t:ty),*) => {$(
        impl RangeEndpoint for $t {
            fn sample_endpoint(lo: Self, hi: Self, _inclusive: bool, rng: &mut TestRng) -> Self {
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
endpoint_float!(f32, f64);

impl<T: RangeEndpoint> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "empty range strategy");
        T::sample_endpoint(self.start, self.end, false, rng)
    }
}

impl<T: RangeEndpoint> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_endpoint(*self.start(), *self.end(), true, rng)
    }
}

/// Types with a full-domain default strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_f64() * 2.0 - 1.0) as f32 * 1e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_f64() * 2.0 - 1.0) * 1e12
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('\u{FFFD}')
    }
}

/// Strategy for [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! strategy_tuples {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
strategy_tuples! {
    (0 S0)
    (0 S0, 1 S1)
    (0 S0, 1 S1, 2 S2)
    (0 S0, 1 S1, 2 S2, 3 S3)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5, 6 S6, 7 S7)
}

/// Built-in strategy combinators (`prop::collection::vec` and friends).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Length specifications accepted by [`vec`].
        pub trait SizeRange {
            /// Draws a length.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty size range");
                self.start + (rng.next_u64() as usize) % (self.end - self.start)
            }
        }

        /// Strategy for vectors of `element` values.
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.sample_len(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// A vector strategy with element strategy and length spec.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

/// Defines property tests: each `fn name(arg in STRATEGY, ...) { body }`
/// becomes a `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..(__config.cases as u64) {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(__msg) => {
                            panic!(
                                "proptest case {}/{} failed: {}",
                                __case + 1,
                                __config.cases,
                                __msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} (left: {:?}, right: {:?})",
                format!($($fmt)+),
                __l,
                __r
            ));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u8..=255, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            let _ = y;
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_composition(
            v in prop::collection::vec(any::<u64>(), 0..20),
            (a, b) in (1usize..5, 1usize..5).prop_map(|(a, b)| (a, a + b)),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(b > a);
            prop_assert_eq!(a, a);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
