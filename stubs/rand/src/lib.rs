//! Offline vendored shim for the subset of `rand` 0.8 this workspace uses:
//! `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64` and
//! `rngs::StdRng`.
//!
//! `StdRng` here is SplitMix64 — statistically fine for synthetic-data
//! generation and tests, deterministic per seed, and dependency-free. It is
//! NOT the real rand crate's ChaCha12, so absolute sequences differ from
//! upstream; everything in this workspace derives its fixtures from its own
//! seeds, so only determinism matters, not the exact stream.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Types drawable uniformly from a bounded interval.
///
/// The blanket `SampleRange` impls below are generic over this trait — a
/// single applicable impl per range shape, which is what lets the compiler
/// unify an unsuffixed range literal's type with the call site's expected
/// type (`slice.get(rng.gen_range(0..5))` infers `usize`), matching real
/// rand's inference behaviour.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as u128) - (lo as u128) + u128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                lo + (u128::sample_standard(rng) % span) as $t
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                (lo as i128 + (u128::sample_standard(rng) % span) as i128) as $t
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                lo + <$t>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T` (uniform over
    /// the integer domain; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // u64 of state, trivially seedable.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    /// Alias of [`StdRng`] (the real crate's small fast RNG).
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(-1.5f32..1.5);
            assert!((-1.5..1.5).contains(&f));
            let g: f64 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn works_through_dyn_like_generics() {
        fn takes_rng<R: Rng + ?Sized>(rng: &mut R) -> u8 {
            rng.gen_range(0u8..=255)
        }
        let mut r = StdRng::seed_from_u64(9);
        takes_rng(&mut r);
    }
}
