//! Offline vendored shim for the subset of `parking_lot` this workspace
//! uses: `Mutex` and `RwLock` with panic-free, non-poisoning guards.
//!
//! Backed by `std::sync` primitives; a poisoned std lock is recovered
//! transparently (`parking_lot` has no poisoning, so callers expect
//! `lock()`/`read()`/`write()` to be infallible).

use std::sync::{self, PoisonError};

/// A mutual-exclusion primitive (std-backed, non-poisoning API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (std-backed, non-poisoning API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
