//! Offline vendored shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented directly over `proc_macro` token
//! trees (no `syn`/`quote`), targeting the companion `serde` shim's
//! `Content` value-tree model.
//!
//! Supported container shapes: named-field structs, newtype/tuple structs,
//! enums with unit/newtype/tuple/struct variants. Supported attributes —
//! the set this workspace uses:
//!
//! * container: `#[serde(tag = "...")]` (internal tagging),
//!   `#[serde(rename_all = "snake_case")]`, `#[serde(transparent)]`
//! * field: `#[serde(default)]`, `#[serde(rename = "...")]`,
//!   `#[serde(skip_serializing_if = "path")]`
//!
//! Missing `Option<T>` fields deserialize to `None` (matching serde), and
//! unknown fields are ignored (matching `serde_json`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed intermediate representation
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ContainerAttrs {
    tag: Option<String>,
    rename_all_snake: bool,
    transparent: bool,
}

#[derive(Default, Clone)]
struct FieldAttrs {
    default: bool,
    rename: Option<String>,
    skip_serializing_if: Option<String>,
}

struct Field {
    name: String,
    ty: String,
    attrs: FieldAttrs,
}

impl Field {
    fn key(&self) -> String {
        self.attrs.rename.clone().unwrap_or_else(|| self.name.clone())
    }

    fn is_option(&self) -> bool {
        self.ty.starts_with("Option <")
            || self.ty.starts_with(":: std :: option :: Option <")
            || self.ty.starts_with("std :: option :: Option <")
            || self.ty.starts_with("core :: option :: Option <")
    }

    fn lenient(&self) -> bool {
        self.attrs.default || self.is_option()
    }
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Body {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    impl_generics: String,
    type_args: String,
    where_clause: String,
    attrs: ContainerAttrs,
    body: Body,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == name)
    }
}

/// Joins token trees back into surface syntax. A single space between
/// tokens is always valid Rust except inside lifetimes, which are glued.
fn tts_to_string(toks: &[TokenTree]) -> String {
    let mut out = String::new();
    let mut glue_next = false;
    for t in toks {
        let s = match t {
            TokenTree::Group(g) => {
                let inner = tts_to_string(&g.stream().into_iter().collect::<Vec<_>>());
                match g.delimiter() {
                    Delimiter::Parenthesis => format!("( {inner} )"),
                    Delimiter::Brace => format!("{{ {inner} }}"),
                    Delimiter::Bracket => format!("[ {inner} ]"),
                    Delimiter::None => inner,
                }
            }
            other => other.to_string(),
        };
        if !out.is_empty() && !glue_next {
            out.push(' ');
        }
        glue_next = matches!(t, TokenTree::Punct(p) if p.as_char() == '\'');
        out.push_str(&s);
    }
    out
}

fn lit_string(tok: &TokenTree) -> String {
    let s = tok.to_string();
    s.trim_matches('"').to_string()
}

/// Consumes leading attributes, folding `#[serde(...)]` metas into
/// container/field attr structs via `on_meta`.
fn parse_attrs(c: &mut Cursor, mut on_meta: impl FnMut(&str, Option<String>)) {
    while c.at_punct('#') {
        c.next(); // '#'
        let Some(TokenTree::Group(g)) = c.next() else {
            return;
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        let is_serde = matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let Some(TokenTree::Group(args)) = inner.get(1) else {
            continue;
        };
        let mut ac = Cursor::new(args.stream());
        while let Some(tok) = ac.next() {
            let TokenTree::Ident(key) = tok else {
                continue;
            };
            let key = key.to_string();
            let value = if ac.at_punct('=') {
                ac.next();
                ac.next().map(|v| lit_string(&v))
            } else {
                None
            };
            on_meta(&key, value);
            if ac.at_punct(',') {
                ac.next();
            }
        }
    }
}

/// Collects the `<...>` generics group (cursor positioned on `<`). Returns
/// `(impl_generics, type_args)` — e.g. `("<'a, T: Serialize>", "<'a, T>")`.
fn parse_generics(c: &mut Cursor) -> (String, String) {
    c.next(); // '<'
    let mut depth = 1usize;
    let mut toks: Vec<TokenTree> = Vec::new();
    while depth > 0 {
        let Some(t) = c.next() else { break };
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        toks.push(t);
    }
    // Split parameters at top-level commas, take each parameter's name.
    let mut names: Vec<String> = Vec::new();
    let mut d = 0usize;
    let mut start_of_param = true;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => d += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => d = d.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && d == 0 => start_of_param = true,
            TokenTree::Punct(p) if p.as_char() == '\'' && d == 0 && start_of_param => {
                if let Some(TokenTree::Ident(id)) = toks.get(i + 1) {
                    names.push(format!("'{id}"));
                }
                start_of_param = false;
                i += 1;
            }
            TokenTree::Ident(id) if d == 0 && start_of_param => {
                let id = id.to_string();
                if id != "const" {
                    names.push(id);
                    start_of_param = false;
                }
            }
            _ => {}
        }
        i += 1;
    }
    (
        format!("< {} >", tts_to_string(&toks)),
        format!("< {} >", names.join(", ")),
    )
}

/// Parses the fields of a braced (named-field) body.
fn parse_named_fields(group_stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(group_stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let mut attrs = FieldAttrs::default();
        parse_attrs(&mut c, |key, value| match key {
            "default" => attrs.default = true,
            "rename" => attrs.rename = value,
            "skip_serializing_if" => attrs.skip_serializing_if = value,
            _ => {}
        });
        if c.at_ident("pub") {
            c.next();
            if matches!(c.peek(), Some(TokenTree::Group(_))) {
                c.next(); // pub(crate) etc.
            }
        }
        let Some(TokenTree::Ident(name)) = c.next() else {
            break;
        };
        c.next(); // ':'
        let mut depth = 0usize;
        let mut ty: Vec<TokenTree> = Vec::new();
        while let Some(t) = c.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        c.next();
                        break;
                    }
                    _ => {}
                }
            }
            ty.push(c.next().expect("peeked"));
        }
        fields.push(Field {
            name: name.to_string(),
            ty: tts_to_string(&ty),
            attrs,
        });
    }
    fields
}

/// Counts the elements of a parenthesised (tuple) body.
fn parse_tuple_arity(group_stream: TokenStream) -> usize {
    let mut c = Cursor::new(group_stream);
    if c.peek().is_none() {
        return 0;
    }
    let mut arity = 1usize;
    let mut depth = 0usize;
    while let Some(t) = c.next() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' | '(' => depth += 1,
                '>' | ')' => depth = depth.saturating_sub(1),
                ',' if depth == 0 && c.peek().is_some() => arity += 1,
                _ => {}
            }
        }
    }
    arity
}

fn parse_variants(group_stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(group_stream);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        parse_attrs(&mut c, |_, _| {});
        let Some(TokenTree::Ident(name)) = c.next() else {
            break;
        };
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = parse_tuple_arity(g.stream());
                c.next();
                Shape::Tuple(arity)
            }
            _ => Shape::Unit,
        };
        if c.at_punct(',') {
            c.next();
        }
        variants.push(Variant {
            name: name.to_string(),
            shape,
        });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut c = Cursor::new(input);
    let mut attrs = ContainerAttrs::default();
    parse_attrs(&mut c, |key, value| match key {
        "tag" => attrs.tag = value,
        "rename_all" => attrs.rename_all_snake = true,
        "transparent" => attrs.transparent = true,
        _ => {}
    });
    if c.at_ident("pub") {
        c.next();
        if matches!(c.peek(), Some(TokenTree::Group(_))) {
            c.next();
        }
    }
    let Some(TokenTree::Ident(kw)) = c.next() else {
        panic!("serde_derive shim: expected `struct` or `enum`");
    };
    let kw = kw.to_string();
    let Some(TokenTree::Ident(name)) = c.next() else {
        panic!("serde_derive shim: expected type name");
    };
    let (impl_generics, type_args) = if c.at_punct('<') {
        parse_generics(&mut c)
    } else {
        (String::new(), String::new())
    };
    let mut where_clause = String::new();
    if c.at_ident("where") {
        let mut toks: Vec<TokenTree> = Vec::new();
        while let Some(t) = c.peek() {
            if matches!(t, TokenTree::Group(g) if g.delimiter() != Delimiter::None) {
                break;
            }
            toks.push(c.next().expect("peeked"));
        }
        where_clause = tts_to_string(&toks);
    }
    let body = match kw.as_str() {
        "struct" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Shape::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Shape::Tuple(parse_tuple_arity(g.stream())))
            }
            _ => Body::Struct(Shape::Unit),
        },
        "enum" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde_derive shim: enum without a body"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}`"),
    };
    Input {
        name: name.to_string(),
        impl_generics,
        type_args,
        where_clause,
        attrs,
        body,
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn snake(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_uppercase() {
            if i != 0 {
                out.push('_');
            }
            out.extend(ch.to_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn variant_key(input: &Input, variant: &str) -> String {
    if input.attrs.rename_all_snake {
        snake(variant)
    } else {
        variant.to_string()
    }
}

const SER_ERR: &str = "<__S::Error as ::serde::ser::Error>::custom";
const DE_ERR: &str = "<__D::Error as ::serde::de::Error>::custom";

/// `__m.push(("key", to_content(expr)?));` with optional skip predicate.
fn ser_push(field: &Field, expr: &str, out: &mut String) {
    let key = field.key();
    let push = format!(
        "__m.push((::std::string::String::from(\"{key}\"), \
         ::serde::__private::to_content({expr}).map_err({SER_ERR})?));"
    );
    match &field.attrs.skip_serializing_if {
        Some(pred) => out.push_str(&format!("if !({pred})({expr}) {{ {push} }}\n")),
        None => {
            out.push_str(&push);
            out.push('\n');
        }
    }
}

fn de_take(field: &Field) -> String {
    let key = field.key();
    let take = if field.lenient() { "take_opt" } else { "take_req" };
    format!("::serde::__private::{take}(&mut __m, \"{key}\").map_err({DE_ERR})?")
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let ig = &input.impl_generics;
    let ta = &input.type_args;
    let wc = &input.where_clause;
    let mut body = String::new();
    match &input.body {
        Body::Struct(Shape::Unit) => {
            body.push_str("__s.serialize_content(::serde::__private::Content::Null)");
        }
        Body::Struct(Shape::Tuple(1)) => {
            // Newtype (and `#[serde(transparent)]`): forward to the inner
            // value, exactly like upstream serde.
            body.push_str("::serde::Serialize::serialize(&self.0, __s)");
        }
        Body::Struct(Shape::Tuple(n)) => {
            body.push_str("let mut __seq: ::std::vec::Vec<::serde::__private::Content> = ::std::vec::Vec::new();\n");
            for i in 0..*n {
                body.push_str(&format!(
                    "__seq.push(::serde::__private::to_content(&self.{i}).map_err({SER_ERR})?);\n"
                ));
            }
            body.push_str("__s.serialize_content(::serde::__private::Content::Seq(__seq))");
        }
        Body::Struct(Shape::Named(fields)) => {
            if input.attrs.transparent && fields.len() == 1 {
                body.push_str(&format!(
                    "::serde::Serialize::serialize(&self.{}, __s)",
                    fields[0].name
                ));
            } else {
                body.push_str(
                    "let mut __m: ::std::vec::Vec<(::std::string::String, \
                     ::serde::__private::Content)> = ::std::vec::Vec::new();\n",
                );
                for f in fields {
                    ser_push(f, &format!("&self.{}", f.name), &mut body);
                }
                body.push_str("__s.serialize_content(::serde::__private::Content::Map(__m))");
            }
        }
        Body::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vkey = variant_key(input, &v.name);
                match (&input.attrs.tag, &v.shape) {
                    (Some(tag), Shape::Unit) => body.push_str(&format!(
                        "{name}::{v} => __s.serialize_content(::serde::__private::Content::Map(\
                         vec![(::std::string::String::from(\"{tag}\"), \
                         ::serde::__private::Content::Str(::std::string::String::from(\"{vkey}\")))])),\n",
                        v = v.name
                    )),
                    (Some(tag), Shape::Named(fields)) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        body.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let mut __m: ::std::vec::Vec<(::std::string::String, \
                             ::serde::__private::Content)> = vec![(::std::string::String::from(\"{tag}\"), \
                             ::serde::__private::Content::Str(::std::string::String::from(\"{vkey}\")))];\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                        for f in fields {
                            ser_push(f, &f.name, &mut body);
                        }
                        body.push_str(
                            "__s.serialize_content(::serde::__private::Content::Map(__m))\n}\n",
                        );
                    }
                    (Some(tag), Shape::Tuple(1)) => body.push_str(&format!(
                        "{name}::{v}(__x0) => {{\n\
                         let __inner = ::serde::__private::to_content(__x0).map_err({SER_ERR})?;\n\
                         let mut __m = ::serde::__private::content_map(__inner).map_err({SER_ERR})?;\n\
                         __m.insert(0, (::std::string::String::from(\"{tag}\"), \
                         ::serde::__private::Content::Str(::std::string::String::from(\"{vkey}\"))));\n\
                         __s.serialize_content(::serde::__private::Content::Map(__m))\n}}\n",
                        v = v.name
                    )),
                    (Some(_), Shape::Tuple(_)) => panic!(
                        "serde_derive shim: internally tagged tuple variants are unsupported"
                    ),
                    (None, Shape::Unit) => body.push_str(&format!(
                        "{name}::{v} => __s.serialize_content(\
                         ::serde::__private::Content::Str(::std::string::String::from(\"{vkey}\"))),\n",
                        v = v.name
                    )),
                    (None, Shape::Tuple(1)) => body.push_str(&format!(
                        "{name}::{v}(__x0) => __s.serialize_content(::serde::__private::Content::Map(\
                         vec![(::std::string::String::from(\"{vkey}\"), \
                         ::serde::__private::to_content(__x0).map_err({SER_ERR})?)])),\n",
                        v = v.name
                    )),
                    (None, Shape::Tuple(n)) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                        body.push_str(&format!(
                            "{name}::{v}({binds}) => {{\n\
                             let mut __seq: ::std::vec::Vec<::serde::__private::Content> = \
                             ::std::vec::Vec::new();\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                        for b in &binds {
                            body.push_str(&format!(
                                "__seq.push(::serde::__private::to_content({b}).map_err({SER_ERR})?);\n"
                            ));
                        }
                        body.push_str(&format!(
                            "__s.serialize_content(::serde::__private::Content::Map(\
                             vec![(::std::string::String::from(\"{vkey}\"), \
                             ::serde::__private::Content::Seq(__seq))]))\n}}\n"
                        ));
                    }
                    (None, Shape::Named(fields)) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        body.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let mut __m: ::std::vec::Vec<(::std::string::String, \
                             ::serde::__private::Content)> = ::std::vec::Vec::new();\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                        for f in fields {
                            ser_push(f, &f.name, &mut body);
                        }
                        body.push_str(&format!(
                            "__s.serialize_content(::serde::__private::Content::Map(\
                             vec![(::std::string::String::from(\"{vkey}\"), \
                             ::serde::__private::Content::Map(__m))]))\n}}\n"
                        ));
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl {ig} ::serde::Serialize for {name} {ta} {wc} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __s: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn gen_named_ctor(prefix: &str, fields: &[Field]) -> String {
    let mut out = format!("{prefix} {{\n");
    for f in fields {
        out.push_str(&format!("{}: {},\n", f.name, de_take(f)));
    }
    out.push('}');
    out
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let ta = &input.type_args;
    let wc = &input.where_clause;
    // Merge 'de into the declared generics (none of this workspace's
    // Deserialize types are generic, but keep the general form correct).
    let ig = if input.impl_generics.is_empty() {
        "<'de>".to_string()
    } else {
        format!(
            "<'de, {}",
            input.impl_generics.trim_start().trim_start_matches('<')
        )
    };
    let mut body = String::new();
    match &input.body {
        Body::Struct(Shape::Unit) => {
            body.push_str("let _ = __d.deserialize_content()?;\n");
            body.push_str(&format!("::core::result::Result::Ok({name})"));
        }
        Body::Struct(Shape::Tuple(1)) => {
            body.push_str(&format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(__d)?))"
            ));
        }
        Body::Struct(Shape::Tuple(n)) => {
            body.push_str(&format!(
                "let __seq = ::serde::__private::content_seq(__d.deserialize_content()?)\
                 .map_err({DE_ERR})?;\n\
                 if __seq.len() != {n} {{\n\
                 return ::core::result::Result::Err({DE_ERR}(\
                 format!(\"expected {n} elements, found {{}}\", __seq.len())));\n}}\n\
                 let mut __it = __seq.into_iter();\n"
            ));
            body.push_str(&format!("::core::result::Result::Ok({name}(\n"));
            for _ in 0..*n {
                body.push_str(&format!(
                    "::serde::__private::from_content(__it.next().expect(\"length checked\"))\
                     .map_err({DE_ERR})?,\n"
                ));
            }
            body.push_str("))");
        }
        Body::Struct(Shape::Named(fields)) => {
            if input.attrs.transparent && fields.len() == 1 {
                body.push_str(&format!(
                    "::core::result::Result::Ok({name} {{ {}: \
                     ::serde::Deserialize::deserialize(__d)? }})",
                    fields[0].name
                ));
            } else {
                body.push_str(&format!(
                    "let mut __m = ::serde::__private::content_map(__d.deserialize_content()?)\
                     .map_err({DE_ERR})?;\n"
                ));
                body.push_str(&format!(
                    "::core::result::Result::Ok({})",
                    gen_named_ctor(name, fields)
                ));
            }
        }
        Body::Enum(variants) => match &input.attrs.tag {
            Some(tag) => {
                body.push_str(&format!(
                    "let mut __m = ::serde::__private::content_map(__d.deserialize_content()?)\
                     .map_err({DE_ERR})?;\n\
                     let __tag: ::std::string::String = \
                     ::serde::__private::take_req(&mut __m, \"{tag}\").map_err({DE_ERR})?;\n\
                     match __tag.as_str() {{\n"
                ));
                for v in variants {
                    let vkey = variant_key(input, &v.name);
                    match &v.shape {
                        Shape::Unit => body.push_str(&format!(
                            "\"{vkey}\" => ::core::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        )),
                        Shape::Named(fields) => {
                            body.push_str(&format!(
                                "\"{vkey}\" => ::core::result::Result::Ok({}),\n",
                                gen_named_ctor(&format!("{name}::{}", v.name), fields)
                            ));
                        }
                        Shape::Tuple(1) => body.push_str(&format!(
                            "\"{vkey}\" => ::core::result::Result::Ok({name}::{v}(\
                             ::serde::__private::from_content(\
                             ::serde::__private::Content::Map(__m)).map_err({DE_ERR})?)),\n",
                            v = v.name
                        )),
                        Shape::Tuple(_) => panic!(
                            "serde_derive shim: internally tagged tuple variants are unsupported"
                        ),
                    }
                }
                body.push_str(&format!(
                    "__other => ::core::result::Result::Err({DE_ERR}(\
                     format!(\"unknown {tag} variant `{{__other}}`\"))),\n}}\n"
                ));
            }
            None => {
                body.push_str("match __d.deserialize_content()? {\n");
                body.push_str("::serde::__private::Content::Str(__s0) => match __s0.as_str() {\n");
                for v in variants {
                    if matches!(v.shape, Shape::Unit) {
                        let vkey = variant_key(input, &v.name);
                        body.push_str(&format!(
                            "\"{vkey}\" => ::core::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        ));
                    }
                }
                body.push_str(&format!(
                    "__other => ::core::result::Result::Err({DE_ERR}(\
                     format!(\"unknown variant `{{__other}}`\"))),\n}},\n"
                ));
                body.push_str(
                    "::serde::__private::Content::Map(__m0) if __m0.len() == 1 => {\n\
                     let (__k, __v) = __m0.into_iter().next().expect(\"length checked\");\n\
                     match __k.as_str() {\n",
                );
                for v in variants {
                    let vkey = variant_key(input, &v.name);
                    match &v.shape {
                        Shape::Unit => body.push_str(&format!(
                            "\"{vkey}\" => ::core::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        )),
                        Shape::Tuple(1) => body.push_str(&format!(
                            "\"{vkey}\" => ::core::result::Result::Ok({name}::{v}(\
                             ::serde::__private::from_content(__v).map_err({DE_ERR})?)),\n",
                            v = v.name
                        )),
                        Shape::Tuple(n) => {
                            body.push_str(&format!(
                                "\"{vkey}\" => {{\n\
                                 let __seq = ::serde::__private::content_seq(__v).map_err({DE_ERR})?;\n\
                                 if __seq.len() != {n} {{\n\
                                 return ::core::result::Result::Err({DE_ERR}(\
                                 format!(\"expected {n} elements, found {{}}\", __seq.len())));\n}}\n\
                                 let mut __it = __seq.into_iter();\n\
                                 ::core::result::Result::Ok({name}::{v}(\n",
                                v = v.name
                            ));
                            for _ in 0..*n {
                                body.push_str(&format!(
                                    "::serde::__private::from_content(\
                                     __it.next().expect(\"length checked\")).map_err({DE_ERR})?,\n"
                                ));
                            }
                            body.push_str("))\n}\n");
                        }
                        Shape::Named(fields) => {
                            body.push_str(&format!(
                                "\"{vkey}\" => {{\n\
                                 let mut __m = ::serde::__private::content_map(__v)\
                                 .map_err({DE_ERR})?;\n\
                                 ::core::result::Result::Ok({})\n}}\n",
                                gen_named_ctor(&format!("{name}::{}", v.name), fields)
                            ));
                        }
                    }
                }
                body.push_str(&format!(
                    "__other => ::core::result::Result::Err({DE_ERR}(\
                     format!(\"unknown variant `{{__other}}`\"))),\n}}\n}},\n"
                ));
                body.push_str(&format!(
                    "__other => ::core::result::Result::Err({DE_ERR}(\
                     format!(\"invalid enum form: {{__other:?}}\"))),\n}}\n"
                ));
            }
        },
    }
    format!(
        "#[automatically_derived]\n\
         impl {ig} ::serde::Deserialize<'de> for {name} {ta} {wc} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// Derives `serde::Serialize` (shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}
