//! Offline vendored shim for the subset of `criterion` this workspace's
//! benches use: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Throughput`, `BenchmarkId`,
//! `sample_size` and `Bencher::iter`.
//!
//! No statistics, plots or reports — each benchmark runs a short warmup
//! plus a fixed number of timed iterations and prints mean wall-clock per
//! iteration. Enough to compile `cargo bench --no-run` targets and to eye
//! relative regressions offline; not a replacement for real criterion.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Throughput annotation (accepted, echoed in output).
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterised benchmark identifier, e.g. `new("flat", 1024)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds a bare parameter id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the last `iter` run.
    last_mean_nanos: f64,
}

impl Bencher {
    /// Times `routine`: one warmup call, then `iters` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std_black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        let total = start.elapsed();
        self.last_mean_nanos = total.as_nanos() as f64 / self.iters.max(1) as f64;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    crit: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (mapped to timed iterations here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.crit.iters = (n as u64).clamp(1, 1000);
        self
    }

    /// Records a throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.crit.iters,
            last_mean_nanos: 0.0,
        };
        f(&mut b);
        self.report(&id.to_string(), b.last_mean_nanos);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.crit.iters,
            last_mean_nanos: 0.0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.last_mean_nanos);
        self
    }

    /// Ends the group (no-op; matches the criterion API).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, mean_nanos: f64) {
        let tp = match &self.throughput {
            Some(Throughput::Elements(n)) if mean_nanos > 0.0 => {
                format!("  ({:.1} Melem/s)", *n as f64 / mean_nanos * 1e3)
            }
            Some(Throughput::Bytes(n)) if mean_nanos > 0.0 => {
                format!("  ({:.1} MiB/s)", *n as f64 / mean_nanos * 1e3 / 1.048_576)
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {:>12.1} ns/iter{}",
            self.name, id, mean_nanos, tp
        );
    }
}

/// Entry point: holds run configuration shared by groups.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep offline bench runs quick: ~20 timed iterations/bench.
        Criterion { iters: 20 }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            crit: self,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters,
            last_mean_nanos: 0.0,
        };
        f(&mut b);
        println!("{}: {:>12.1} ns/iter", id, b.last_mean_nanos);
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
